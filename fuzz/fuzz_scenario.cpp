// Fuzz target: scenario/config file parsing (app::parse_scenario).
//
// The raw input is the scenario text. Contracts checked per input:
//   * parse_scenario() never throws — the line parser and its checked
//     numeric fields are total functions;
//   * rejection always carries a diagnostic: a 1-based line number no
//     larger than the line count, plus a non-empty message;
//   * an accepted scenario is internally consistent: every session's
//     source/receivers and every failure/crash target is a node the
//     topology actually contains.
#include <algorithm>
#include <string>

#include "app/config.hpp"
#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace ncfn;
  const std::string text(data, data + size);

  app::ParseError err;
  const auto sc = app::parse_scenario(text, &err);
  fuzzing::note(sc.has_value() ? 1 : 0);
  if (!sc.has_value()) {
    const auto line_count =
        static_cast<long>(std::count(text.begin(), text.end(), '\n')) + 1;
    fuzzing::check(err.line >= 1 && err.line <= line_count,
                   "parse error must name a real 1-based line");
    fuzzing::check(!err.message.empty(),
                   "parse error must carry a message");
    fuzzing::note(static_cast<std::uint64_t>(err.line));
    fuzzing::note_text(err.message);
    return 0;
  }

  const int n = sc->topo.node_count();
  fuzzing::check(static_cast<int>(sc->nodes.size()) == n,
                 "name map and topology must agree on node count");
  for (const auto& s : sc->sessions) {
    fuzzing::check(s.source >= 0 && s.source < n,
                   "session source must be a topology node");
    fuzzing::check(!s.receivers.empty(), "session must have receivers");
    for (const auto r : s.receivers) {
      fuzzing::check(r >= 0 && r < n,
                     "session receiver must be a topology node");
    }
  }
  for (const auto& f : sc->failures) {
    fuzzing::check(f.from >= 0 && f.from < n && f.to >= 0 && f.to < n,
                   "failure endpoints must be topology nodes");
    fuzzing::check(f.at_s >= 0 && f.for_s >= 0,
                   "failure schedule must be non-negative");
  }
  for (const auto& c : sc->crashes) {
    fuzzing::check(c.node >= 0 && c.node < n,
                   "crash target must be a topology node");
    fuzzing::check(c.at_s >= 0 && c.for_s >= 0,
                   "crash schedule must be non-negative");
  }
  fuzzing::note(static_cast<std::uint64_t>(n));
  fuzzing::note(sc->sessions.size());
  fuzzing::note(sc->failures.size());
  fuzzing::note(sc->crashes.size());
  return 0;
}
