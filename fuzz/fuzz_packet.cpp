// Fuzz target: coded-packet header parsing (coding::CodedPacket::parse).
//
// Structure-aware input layout:
//   [0]   generation_blocks selector → g = 1 + b0 % 64
//   [1]   block_size selector        → bs = 1 + b1 % 2048
//   [2..] the wire datagram handed to parse()
//
// Contracts checked per input:
//   * parse() never throws and never reads out of bounds (ASan/UBSan);
//   * acceptance is exact: only a datagram of exactly packet_bytes()
//     parses (the NC layer has no checksum — size is the only gate);
//   * an accepted packet exposes exactly g coefficients and bs payload
//     bytes, and serialize() reproduces the input datagram byte for byte
//     (parse → serialize round trip).
#include <algorithm>
#include <span>

#include "coding/packet.hpp"
#include "coding/types.hpp"
#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace ncfn;
  if (size < 2) return 0;

  coding::CodingParams params;
  params.generation_blocks = 1 + data[0] % 64;
  params.block_size = 1 + data[1] % 2048;
  const std::span<const std::uint8_t> wire(data + 2, size - 2);

  const auto pkt = coding::CodedPacket::parse(wire, params);
  fuzzing::note(pkt.has_value() ? 1 : 0);
  fuzzing::check(pkt.has_value() == (wire.size() == params.packet_bytes()),
                 "CodedPacket::parse acceptance must be exact-size only");
  if (!pkt.has_value()) return 0;

  fuzzing::check(pkt->coeff_count() == params.generation_blocks,
                 "parsed packet must expose g coefficients");
  fuzzing::check(pkt->payload_size() == params.block_size,
                 "parsed packet must expose block_size payload bytes");

  const auto out = pkt->serialize();
  fuzzing::check(out.size() == wire.size() &&
                     std::equal(out.begin(), out.end(), wire.begin()),
                 "parse -> serialize must reproduce the wire bytes");
  fuzzing::note(pkt->session);
  fuzzing::note(pkt->generation);
  fuzzing::note_bytes(out);
  return 0;
}
