// Fuzz target: NC_* control-signal frame parsing (ctrl::parse_signal).
//
// The raw input is the text frame. Contracts checked per input:
//   * parse_signal() never throws — malformed numeric fields must be
//     rejected by the checked parser, not bubble up as exceptions;
//   * an accepted signal is canonical: serialize(sig) re-parses to a
//     signal of the same kind whose serialization is byte-identical
//     (serialize ∘ parse is a projection onto canonical frames).
#include <string>

#include "ctrl/signals.hpp"
#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace ncfn;
  const std::string text(data, data + size);

  const auto sig = ctrl::parse_signal(text);
  fuzzing::note(sig.has_value() ? 1 : 0);
  if (!sig.has_value()) return 0;

  const std::string canon = ctrl::serialize(*sig);
  const auto again = ctrl::parse_signal(canon);
  fuzzing::check(again.has_value(),
                 "serialize() of an accepted signal must re-parse");
  fuzzing::check(again->index() == sig->index(),
                 "round trip must preserve the signal kind");
  fuzzing::check(ctrl::serialize(*again) == canon,
                 "serialize -> parse -> serialize must be a fixed point");
  fuzzing::note(static_cast<std::uint64_t>(sig->index()));
  fuzzing::note_text(canon);
  return 0;
}
