// Fuzz target: feedback-message parsing (app::Feedback::parse).
//
// The raw input is the wire datagram. Contracts checked per input:
//   * parse() never throws and never reads out of bounds;
//   * acceptance requires exactly kFeedbackWireBytes bytes AND a valid
//     type byte — nothing shorter, longer, or with an unknown type;
//   * an accepted message re-serializes to the input bytes exactly
//     (parse → serialize round trip, full-consumption contract).
#include <algorithm>
#include <span>

#include "app/messages.hpp"
#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace ncfn;
  const std::span<const std::uint8_t> wire(data, size);

  const auto fb = app::Feedback::parse(wire);
  fuzzing::note(fb.has_value() ? 1 : 0);
  const bool well_formed = size == app::kFeedbackWireBytes &&
                           (data[0] == 1 || data[0] == 2);
  fuzzing::check(fb.has_value() == well_formed,
                 "Feedback::parse must accept exactly well-formed frames");
  if (!fb.has_value()) return 0;

  fuzzing::check(fb->type == app::FeedbackType::kRepair ||
                     fb->type == app::FeedbackType::kAck,
                 "accepted feedback must carry a valid type");
  const auto out = fb->serialize();
  fuzzing::check(out.size() == wire.size() &&
                     std::equal(out.begin(), out.end(), wire.begin()),
                 "parse -> serialize must reproduce the wire bytes");
  fuzzing::note(fb->session);
  fuzzing::note(fb->generation);
  fuzzing::note(fb->block_mask);
  return 0;
}
