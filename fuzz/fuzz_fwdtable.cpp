// Fuzz target: text forwarding-table parsing (ctrl::ForwardingTable).
//
// The raw input is the table text. Contracts checked per input:
//   * parse() never throws; overlong lines, duplicate session records
//     and trailing bytes after the last newline-terminated record all
//     reject (hardened grammar);
//   * an accepted table round-trips: serialize() re-parses to an equal
//     table, and the serialization is a fixed point.
#include <string>

#include "ctrl/fwdtable.hpp"
#include "harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace ncfn;
  const std::string text(data, data + size);

  const auto tab = ctrl::ForwardingTable::parse(text);
  fuzzing::note(tab.has_value() ? 1 : 0);
  if (!tab.has_value()) return 0;

  // Hardened grammar: any non-empty accepted text ends with a newline.
  fuzzing::check(text.empty() || text.back() == '\n',
                 "accepted table text must be newline-terminated");

  const std::string canon = tab->serialize();
  const auto again = ctrl::ForwardingTable::parse(canon);
  fuzzing::check(again.has_value(),
                 "serialize() of an accepted table must re-parse");
  fuzzing::check(*again == *tab, "round trip must preserve the table");
  fuzzing::check(again->serialize() == canon,
                 "serialize -> parse -> serialize must be a fixed point");
  fuzzing::note(tab->size());
  fuzzing::note_text(canon);
  return 0;
}
