// Differential fuzz target: GF(2^8) kernel tiers vs the scalar oracle.
//
// The repo dispatches four kernel tiers (scalar / SSSE3 / AVX2 / GFNI)
// that must be bit-exact. The unit tests assert equality on hand-picked
// shapes; this target makes the property input-driven: every fuzz input
// decodes to a (coeff set, row length, byte material) triple, every tier
// the build + CPU supports runs every kernel on identical operands, and
// any byte of divergence from the scalar oracle aborts.
//
// Structure-aware input layout:
//   [0..1] row length selector → n = 1 + (b0 | (b1 & 7) << 8)   (1..2048,
//          crossing every vector width and tail-handling boundary)
//   [2]    c       — coefficient for muladd / mul
//   [3..6] c4[0..3] — coefficients for the fused muladd_x4
//   [7..]  byte material; rows are drawn from it at coprime strides so
//          short inputs still produce distinct operands
//
// Checked per input and per supported tier:
//   * muladd, mul, bxor agree byte-for-byte with the scalar tier;
//   * the fused muladd_x4 agrees with its unfused decomposition
//     (four scalar muladd passes) AND with the scalar fused kernel.
#include <array>
#include <vector>

#include "gf/gf256_kernels.hpp"
#include "harness.hpp"

namespace {

using ncfn::gf::simd::KernelTable;
namespace detail = ncfn::gf::simd::detail;

/// Deterministically expand the input material into a row of n bytes.
std::vector<std::uint8_t> make_row(const std::uint8_t* material,
                                   std::size_t m, std::size_t n,
                                   std::size_t stride,
                                   std::uint8_t salt) {
  std::vector<std::uint8_t> row(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t base = m > 0 ? material[(i * stride + salt) % m]
                                    : static_cast<std::uint8_t>(0);
    row[i] = static_cast<std::uint8_t>(base ^ static_cast<std::uint8_t>(
                                                 (i * 37 + salt) & 0xff));
  }
  return row;
}

void check_rows_equal(const std::vector<std::uint8_t>& got,
                      const std::vector<std::uint8_t>& want,
                      const char* what) {
  ncfn::fuzzing::check(got == want, what);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace ncfn;
  if (size < 7) return 0;

  const std::size_t n =
      1 + (static_cast<std::size_t>(data[0]) |
           (static_cast<std::size_t>(data[1] & 7) << 8));
  const std::uint8_t c = data[2];
  const std::uint8_t c4[4] = {data[3], data[4], data[5], data[6]};
  const std::uint8_t* material = data + 7;
  const std::size_t m = size - 7;

  const auto dst0 = make_row(material, m, n, 1, 11);
  const auto src = make_row(material, m, n, 3, 23);
  const std::array<std::vector<std::uint8_t>, 4> rows = {
      make_row(material, m, n, 5, 41), make_row(material, m, n, 7, 59),
      make_row(material, m, n, 11, 73), make_row(material, m, n, 13, 97)};
  const std::uint8_t* row_ptrs[4] = {rows[0].data(), rows[1].data(),
                                     rows[2].data(), rows[3].data()};

  const KernelTable* scalar = detail::scalar_table();
  fuzzing::check(scalar != nullptr, "scalar tier must always exist");

  // Scalar oracle results.
  auto want_muladd = dst0;
  scalar->muladd(want_muladd.data(), src.data(), n, c);
  auto want_mul = dst0;
  scalar->mul(want_mul.data(), n, c);
  auto want_bxor = dst0;
  scalar->bxor(want_bxor.data(), src.data(), n);

  // Unfused decomposition of muladd_x4: four scalar muladd passes. The
  // scalar fused kernel must match it, and so must every vector tier.
  auto want_x4 = dst0;
  for (int j = 0; j < 4; ++j) {
    scalar->muladd(want_x4.data(), row_ptrs[j], n, c4[j]);
  }
  auto scalar_x4 = dst0;
  scalar->muladd_x4(scalar_x4.data(), row_ptrs, c4, n);
  check_rows_equal(scalar_x4, want_x4,
                   "scalar muladd_x4 must equal its unfused decomposition");

  const KernelTable* tiers[] = {detail::ssse3_table(), detail::avx2_table(),
                                detail::gfni_table()};
  for (const KernelTable* t : tiers) {
    if (t == nullptr) continue;  // build or CPU lacks the ISA
    auto got = dst0;
    t->muladd(got.data(), src.data(), n, c);
    check_rows_equal(got, want_muladd, "tier muladd diverges from scalar");

    got = dst0;
    t->mul(got.data(), n, c);
    check_rows_equal(got, want_mul, "tier mul diverges from scalar");

    got = dst0;
    t->bxor(got.data(), src.data(), n);
    check_rows_equal(got, want_bxor, "tier bxor diverges from scalar");

    got = dst0;
    t->muladd_x4(got.data(), row_ptrs, c4, n);
    check_rows_equal(got, want_x4,
                     "tier muladd_x4 diverges from unfused scalar");
  }

  fuzzing::note(n);
  fuzzing::note(c);
  fuzzing::note_bytes(want_muladd);
  fuzzing::note_bytes(want_x4);
  return 0;
}
